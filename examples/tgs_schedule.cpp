// Command-line scheduler: read a .tgs task graph, schedule it with any of
// the 15 algorithms, and emit the schedule (listing, tgssched1 file, Gantt
// or DOT).
//
//   ./examples/tgs_gen --suite=cholesky --dim=10 --out=c.tgs
//   ./examples/tgs_schedule c.tgs --algo=MCP --procs=4 --gantt
//   ./examples/tgs_schedule c.tgs --algo=BSA --topology=hcube3 --out=c.sched
//   Topologies: ring<p> mesh<r>x<c> hcube<d> clique<p> star<p>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "tgs/graph/graph_io.h"
#include "tgs/harness/registry.h"
#include "tgs/net/net_validate.h"
#include "tgs/sched/gantt.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/schedule_io.h"
#include "tgs/sched/validate.h"
#include "tgs/util/cli.h"

int main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: tgs_schedule <graph.tgs> --algo=NAME "
                         "[--procs=N | --topology=SPEC] [--gantt] [--out=F]\n");
    return 1;
  }
  const TaskGraph g = load_graph(cli.positional()[0]);
  const std::string algo_name = cli.get("algo", "MCP");

  const bool is_apn = cli.has("topology");
  Schedule result(g);
  if (is_apn) {
    const RoutingTable routes{[&cli]() {
      try {
        return Topology::from_spec(cli.get("topology", "hcube3"));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(1);
      }
    }()};
    const auto algo = make_apn_scheduler(algo_name);
    NetSchedule ns = algo->run(g, routes);
    const auto v = validate_net_schedule(ns);
    if (!v.ok) {
      std::fprintf(stderr, "INVALID schedule: %s\n", v.error.c_str());
      return 1;
    }
    std::printf("# %s on %s: makespan=%lld NSL=%.3f procs=%d messages=%zu\n",
                algo_name.c_str(), routes.topology().name().c_str(),
                static_cast<long long>(ns.makespan()),
                normalized_schedule_length(g, ns.makespan()),
                ns.tasks().procs_used(), ns.messages().size());
    result = std::move(ns.tasks());
  } else {
    const auto algo = make_scheduler(algo_name);
    SchedOptions opt;
    opt.num_procs = static_cast<int>(cli.get_int("procs", 0));
    Schedule s = algo->run(g, opt);
    const auto v = validate_schedule(s, opt.num_procs);
    if (!v.ok) {
      std::fprintf(stderr, "INVALID schedule: %s\n", v.error.c_str());
      return 1;
    }
    std::printf("# %s: makespan=%lld NSL=%.3f procs=%d\n", algo_name.c_str(),
                static_cast<long long>(s.makespan()),
                normalized_schedule_length(s), s.procs_used());
    result = std::move(s);
  }

  if (cli.has("gantt")) std::printf("%s", gantt_chart(result, 100).c_str());
  if (cli.has("listing")) std::printf("%s", schedule_listing(result).c_str());
  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    save_schedule(out, result);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
  } else if (!cli.has("gantt") && !cli.has("listing")) {
    std::fputs(schedule_to_string(result).c_str(), stdout);
  }
  return 0;
}
