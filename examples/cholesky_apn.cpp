// Domain example: schedule a Cholesky factorization task graph (the
// paper's traced-graph workload, §5.5) onto message-passing machines with
// different interconnects, using the APN algorithms that schedule both
// tasks AND messages on the links.
//
//   ./examples/cholesky_apn [--dim=12] [--comm=1.0]
#include <cstdio>

#include "tgs/gen/traced.h"
#include "tgs/graph/attributes.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/cli.h"
#include "tgs/util/table.h"

int main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const int dim = static_cast<int>(cli.get_int("dim", 12));
  const double comm = cli.get_double("comm", 1.0);

  const TaskGraph g = cholesky_graph(dim, comm);
  std::printf(
      "Cholesky N=%d: %u tasks (cdiv+cmod), %zu edges, CCR=%.2f, "
      "CP=%lld\n\n",
      dim, g.num_nodes(), g.num_edges(), g.ccr(),
      static_cast<long long>(critical_path_length(g)));

  std::vector<Topology> machines;
  machines.push_back(Topology::ring(8));
  machines.push_back(Topology::mesh(2, 4));
  machines.push_back(Topology::hypercube(3));
  machines.push_back(Topology::fully_connected(8));

  Table table({"machine", "algorithm", "makespan", "NSL", "procs used",
               "time(ms)"});
  for (const auto& topo : machines) {
    const RoutingTable routes(topo);
    for (const auto& algo : make_apn_schedulers()) {
      const RunResult r = run_apn_scheduler(*algo, g, routes);
      if (!r.valid) {
        std::fprintf(stderr, "INVALID %s on %s: %s\n", r.algo.c_str(),
                     topo.name().c_str(), r.error.c_str());
        return 1;
      }
      table.add_row({topo.name(), r.algo, Table::fmt_int(r.length),
                     Table::fmt(r.nsl, 3), Table::fmt_int(r.procs_used),
                     Table::fmt(r.seconds * 1e3, 2)});
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "\nNote how richer interconnects (hypercube, clique) shorten the\n"
      "schedules relative to the ring -- the paper's excluded-for-space\n"
      "observation in section 6.4.1.\n");
  return 0;
}
