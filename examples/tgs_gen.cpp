// Command-line benchmark-graph generator: writes any of the paper's
// suites as .tgs files for external consumption.
//
//   ./examples/tgs_gen --suite=rgnos --nodes=200 --ccr=1.0 \
//       --parallelism=3 --seed=7 --out=graph.tgs
//   ./examples/tgs_gen --suite=cholesky --dim=16 --comm=5 --out=chol.tgs
//   ./examples/tgs_gen --suite=psg --index=0 --out=psg0.tgs
//   Suites: rgnos rgbos rgpos cholesky gauss fft laplace psg
#include <cstdio>

#include "tgs/gen/psg.h"
#include "tgs/gen/rgbos.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/rgpos.h"
#include "tgs/gen/traced.h"
#include "tgs/graph/graph_io.h"
#include "tgs/util/cli.h"

int main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::string suite = cli.get("suite", "rgnos");
  const std::string out = cli.get("out", "");
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  TaskGraph g = [&]() -> TaskGraph {
    if (suite == "rgnos") {
      RgnosParams p;
      p.num_nodes = static_cast<NodeId>(cli.get_int("nodes", 100));
      p.ccr = cli.get_double("ccr", 1.0);
      p.parallelism = static_cast<int>(cli.get_int("parallelism", 3));
      p.seed = seed;
      return rgnos_graph(p);
    }
    if (suite == "rgbos") {
      return rgbos_graph(cli.get_double("ccr", 1.0),
                         static_cast<NodeId>(cli.get_int("nodes", 20)), seed);
    }
    if (suite == "rgpos") {
      RgposParams p;
      p.num_nodes = static_cast<NodeId>(cli.get_int("nodes", 100));
      p.num_procs = static_cast<int>(cli.get_int("procs", 4));
      p.ccr = cli.get_double("ccr", 1.0);
      p.seed = seed;
      p.width_guard = cli.has("width-guard");
      const RgposGraph r = rgpos_graph(p);
      std::fprintf(stderr, "planted optimal length: %lld on %d processors\n",
                   static_cast<long long>(r.optimal_length), r.num_procs);
      return r.graph;
    }
    if (suite == "cholesky")
      return cholesky_graph(static_cast<int>(cli.get_int("dim", 16)),
                            cli.get_double("comm", 1.0));
    if (suite == "gauss")
      return gaussian_elimination_graph(static_cast<int>(cli.get_int("dim", 16)),
                                        cli.get_double("comm", 1.0));
    if (suite == "fft")
      return fft_graph(static_cast<int>(cli.get_int("points", 32)),
                       cli.get_double("comm", 1.0));
    if (suite == "laplace")
      return laplace_graph(static_cast<int>(cli.get_int("side", 6)),
                           static_cast<int>(cli.get_int("iters", 4)),
                           cli.get_double("comm", 1.0));
    if (suite == "psg") {
      auto all = peer_set_graphs();
      const std::size_t i = static_cast<std::size_t>(cli.get_int("index", 0));
      if (i >= all.size()) {
        std::fprintf(stderr, "psg index out of range (0..%zu)\n", all.size() - 1);
        std::exit(1);
      }
      return std::move(all[i].graph);
    }
    std::fprintf(stderr, "unknown suite '%s'\n", suite.c_str());
    std::exit(1);
  }();

  std::fprintf(stderr, "%s: v=%u e=%zu ccr=%.2f\n", g.name().c_str(),
               g.num_nodes(), g.num_edges(), g.ccr());
  if (out.empty()) {
    std::fputs(graph_to_string(g).c_str(), stdout);
  } else {
    save_graph(out, g);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
  }
  return 0;
}
