#!/usr/bin/env python3
"""Compare a fresh tgs_perf JSON run against the committed baseline.

Usage: check_perf_regression.py BASELINE.json CURRENT.json [--factor 2.0]
           [--min-ratio SLOW:FAST:FACTOR ...] [--allow-missing]

Fails (exit 1) when any benchmark present in BOTH files regressed by more
than --factor in real_time, and when a baseline benchmark is MISSING from
the current run -- a deleted or renamed benchmark must update the
committed baseline in the same change, not silently drop out of the gate.
Pass --allow-missing during deliberate migrations to downgrade MISSING to
a report-only line. Benchmarks only present in the current run (NEW) never
fail: adding one is safe before the baseline is regenerated. Absolute
times differ across machines; a generous factor catches algorithmic
regressions (the thing this gate is for) while tolerating runner noise.

--min-ratio asserts SLOW/FAST >= FACTOR *within the current run only*
(e.g. BM_Etf_Naive/500:BM_Etf/500:5). Both sides ran on the same machine
minutes apart, so these assertions are immune to cross-runner speed
differences -- they encode the algorithmic property itself.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregates
        out[b["name"]] = float(b["real_time"])
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--factor", type=float, default=2.0)
    ap.add_argument("--min-ratio", action="append", default=[],
                    metavar="SLOW:FAST:FACTOR")
    ap.add_argument("--allow-missing", action="store_true",
                    help="report baseline benchmarks absent from the "
                         "current run without failing (benchmark "
                         "migrations)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if not base or not cur:
        print("error: empty benchmark set", file=sys.stderr)
        return 1

    failed = []
    for name in sorted(base.keys() | cur.keys()):
        if name not in base:
            print(f"  NEW      {name} (no baseline)")
            continue
        if name not in cur:
            print(f"  MISSING  {name} (in baseline, not in current run)")
            if not args.allow_missing:
                failed.append(f"MISSING:{name}")
            continue
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        tag = "REGRESS" if ratio > args.factor else "ok"
        print(f"  {tag:8} {name}: {base[name]:12.0f} -> {cur[name]:12.0f} ns "
              f"({ratio:5.2f}x)")
        if ratio > args.factor:
            failed.append(name)

    for spec in args.min_ratio:
        try:
            slow, fast, factor = spec.rsplit(":", 2)
            want = float(factor)
        except ValueError:
            print(f"error: bad --min-ratio spec '{spec}'", file=sys.stderr)
            return 2
        if slow not in cur or fast not in cur:
            print(f"  MISSING  ratio {spec}: benchmark not in current run")
            failed.append(spec)
            continue
        got = cur[slow] / cur[fast] if cur[fast] > 0 else float("inf")
        ok = got >= want
        print(f"  {'ok' if ok else 'REGRESS':8} {slow} / {fast} = "
              f"{got:5.1f}x (need >= {want:.1f}x)")
        if not ok:
            failed.append(spec)

    if failed:
        print(f"\n{len(failed)} check(s) failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
