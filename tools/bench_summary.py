#!/usr/bin/env python3
"""Summarize (or diff) the JSONL files the experiment engine writes.

Usage:
    bench_summary.py FILE.jsonl [FILE.jsonl ...]
        Per-experiment summary of each file: row count and, for every
        numeric field, min / median / max.

    bench_summary.py --diff OLD.jsonl NEW.jsonl
        Row-by-row comparison of two runs. Rows pair up on their identity
        fields (experiment, pivot, row, column, job -- whichever are
        present); any other field that changed is printed as old -> new.
        Exit status 1 when the files differ, 0 when identical -- usable as
        a CI gate against a golden run.

    bench_summary.py --scaling FILE.jsonl [--value-field seconds]
        Per-algorithm scaling exponents from a giant_sweep run. For each
        column (algorithm), least-squares fit of log(value) against
        log(v) -- v taken from the v_actual field when present, else the
        row key -- and report the slope: ~1 is linear, ~2 quadratic. Rows
        with non-positive value or v are skipped (a --no-timing stream has
        no slopes to fit). The value range is printed next to the exponent
        so sub-millisecond noise floors are visible.

    bench_summary.py --serve-stats FILE [FILE ...]
        Summarize tgs_serve `stats` responses (one JSON object per line,
        as printed by `tgs_client --stats`; multiple snapshots and files
        are aggregated by taking each counter's max, since the daemon's
        counters are monotonic within one run). Prints the request
        outcomes, the robustness counters (deadline_exceeded,
        shed_requests, retries_observed, cache_insert_failures), the
        cache surface, journal recovery/compaction counters, and the
        per-algorithm latency table. Exit 1 if no stats line parsed.

    bench_summary.py --ranks FILE.jsonl [--value-field value] [--top N]
        Per-algorithm ranking table. Rows are grouped by sweep coordinate
        (all identity fields except column); inside each group the columns
        (algorithms / param combinations) get competition ranks by
        ascending value (1 = best, ties share a rank), and the table
        reports each column's mean rank, mean value and win count across
        all coordinates. This reproduces the param_sweep stdout ranking
        from its JSONL stream, and works on any experiment whose value is
        lower-is-better (%-degradation, NSL, seconds).

Stdlib only; rows that fail to parse are counted and reported, not fatal.
"""
import argparse
import json
import math
import statistics
import sys

# Fields that *identify* a row (sweep coordinates) rather than measure it.
ID_FIELDS = ("experiment", "pivot", "row", "column", "job")


def load_rows(path):
    """Parse a JSONL file -> (rows, bad_line_numbers)."""
    rows, bad = [], []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                bad.append(lineno)
                continue
            if isinstance(obj, dict):
                rows.append(obj)
            else:
                bad.append(lineno)
    return rows, bad


def is_numeric(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def fmt(v):
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.6g}"
    return str(int(v)) if isinstance(v, float) else str(v)


def summarize(path):
    rows, bad = load_rows(path)
    print(f"== {path}: {len(rows)} rows"
          + (f" ({len(bad)} unparseable lines skipped)" if bad else ""))
    by_exp = {}
    for r in rows:
        by_exp.setdefault(r.get("experiment", "(none)"), []).append(r)
    for exp in sorted(by_exp):
        chunk = by_exp[exp]
        print(f"  {exp}: {len(chunk)} rows")
        fields = sorted({k for r in chunk for k, v in r.items()
                         if is_numeric(v) and k not in ID_FIELDS})
        for field in fields:
            vals = [r[field] for r in chunk if is_numeric(r.get(field))]
            print(f"    {field:<12} n={len(vals):<5} min={fmt(min(vals)):<12}"
                  f" median={fmt(statistics.median(vals)):<12}"
                  f" max={fmt(max(vals))}")
    return bool(bad)


def row_key(r):
    return tuple((k, r[k]) for k in ID_FIELDS if k in r)


def diff(old_path, new_path):
    old_rows, old_bad = load_rows(old_path)
    new_rows, new_bad = load_rows(new_path)
    for path, bad in ((old_path, old_bad), (new_path, new_bad)):
        if bad:
            print(f"warning: {path}: {len(bad)} unparseable lines skipped",
                  file=sys.stderr)

    def index(rows, path):
        out = {}
        for r in rows:
            key = row_key(r)
            if key in out:
                print(f"warning: {path}: duplicate row key {dict(key)}",
                      file=sys.stderr)
            out[key] = r
        return out

    old, new = index(old_rows, old_path), index(new_rows, new_path)
    changed = 0
    for key in sorted(set(old) | set(new), key=repr):
        label = " ".join(f"{k}={v}" for k, v in key) or "(keyless row)"
        if key not in new:
            print(f"- only in {old_path}: {label}")
            changed += 1
            continue
        if key not in old:
            print(f"+ only in {new_path}: {label}")
            changed += 1
            continue
        a, b = old[key], new[key]
        deltas = []
        for field in sorted(set(a) | set(b)):
            if field in ID_FIELDS:
                continue
            va, vb = a.get(field), b.get(field)
            if va != vb:
                deltas.append(f"{field}: {fmt(va) if va is not None else '~'}"
                              f" -> {fmt(vb) if vb is not None else '~'}")
        if deltas:
            print(f"~ {label}: " + "; ".join(deltas))
            changed += 1
    if changed:
        print(f"{changed} row(s) differ")
        return 1
    print(f"identical: {len(old)} rows match")
    return 0


def ranks(path, value_field, top, exclude=("optimal", "L_opt")):
    rows, bad = load_rows(path)
    if bad:
        print(f"warning: {path}: {len(bad)} unparseable lines skipped",
              file=sys.stderr)
    # coordinate = identity fields minus the column being ranked.
    groups = {}
    for r in rows:
        if r.get("column") in exclude or "column" not in r:
            continue
        if not is_numeric(r.get(value_field)):
            continue
        coord = tuple((k, r[k]) for k in ID_FIELDS
                      if k != "column" and k in r)
        groups.setdefault(coord, []).append((r["column"], r[value_field]))

    rank_sum, val_sum, wins, count = {}, {}, {}, {}
    for coord, cells in groups.items():
        values = [v for _, v in cells]
        best = min(values)
        for column, v in cells:
            rank = 1 + sum(1 for w in values if w < v)
            rank_sum[column] = rank_sum.get(column, 0) + rank
            val_sum[column] = val_sum.get(column, 0.0) + v
            count[column] = count.get(column, 0) + 1
            if v == best:
                wins[column] = wins.get(column, 0) + 1

    if not count:
        print(f"{path}: no rankable rows (value field '{value_field}')")
        return 1
    order = sorted(count, key=lambda c: (rank_sum[c] / count[c], c))
    n_groups = len(groups)
    print(f"== {path}: {len(order)} columns ranked over {n_groups} "
          f"coordinates by '{value_field}' (lower is better)")
    width = max(len(c) for c in order[:top]) if order else 10
    print(f"{'#':>4} {'column':<{width}} {'mean rank':>10} "
          f"{'mean ' + value_field:>14} {'wins':>6}")
    for i, column in enumerate(order[:top], 1):
        print(f"{i:>4} {column:<{width}}"
              f" {rank_sum[column] / count[column]:>10.2f}"
              f" {val_sum[column] / count[column]:>14.4g}"
              f" {wins.get(column, 0):>6}")
    return 0


def scaling(path, value_field):
    rows, bad = load_rows(path)
    if bad:
        print(f"warning: {path}: {len(bad)} unparseable lines skipped",
              file=sys.stderr)
    # column -> list of (v, value) observations.
    series = {}
    for r in rows:
        column = r.get("column")
        v = r.get("v_actual", r.get("row"))
        val = r.get(value_field)
        if column is None or not is_numeric(v) or not is_numeric(val):
            continue
        if v <= 0 or val <= 0:  # log-log fit needs positive samples
            continue
        series.setdefault(column, []).append((float(v), float(val)))

    fits = []
    for column, pts in sorted(series.items()):
        # Collapse duplicate sizes (reps) to their minimum: the noise
        # floor, consistent with how the sweeps report timings.
        by_v = {}
        for v, val in pts:
            by_v[v] = min(val, by_v.get(v, float("inf")))
        if len(by_v) < 2:
            continue
        xs = [math.log(v) for v in sorted(by_v)]
        ys = [math.log(by_v[v]) for v in sorted(by_v)]
        n = len(xs)
        mx, my = sum(xs) / n, sum(ys) / n
        sxx = sum((x - mx) ** 2 for x in xs)
        sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
        slope = sxy / sxx if sxx else float("nan")
        lo, hi = min(by_v.values()), max(by_v.values())
        fits.append((column, slope, n, lo, hi))

    if not fits:
        print(f"{path}: no fittable series (value field '{value_field}'; "
              "was the run made with --no-timing?)")
        return 1
    print(f"== {path}: log-log slope of '{value_field}' vs v per column "
          "(~1 linear, ~2 quadratic)")
    width = max(len(c) for c, *_ in fits)
    print(f"{'column':<{width}} {'slope':>7} {'sizes':>6} "
          f"{'min ' + value_field:>14} {'max ' + value_field:>14}")
    for column, slope, n, lo, hi in sorted(fits, key=lambda f: -f[1]):
        print(f"{column:<{width}} {slope:>7.2f} {n:>6} {lo:>14.4g} {hi:>14.4g}")
    return 0


def serve_stats(paths):
    """Aggregate and pretty-print tgs_serve stats-op snapshots."""
    snaps = []
    for path in paths:
        rows, bad = load_rows(path)
        if bad:
            print(f"warning: {path}: {len(bad)} unparseable lines skipped",
                  file=sys.stderr)
        snaps.extend(r for r in rows if r.get("op") == "stats")
    if not snaps:
        print("no stats responses found (expect `tgs_client --stats` output,"
              " one JSON object per line)")
        return 1

    def peak(field):
        vals = [s[field] for s in snaps if is_numeric(s.get(field))]
        return max(vals) if vals else 0

    print(f"== serve stats: {len(snaps)} snapshot(s) aggregated (per-counter"
          " max)")
    print("  requests:")
    for field in ("requests_total", "requests_ok", "requests_error",
                  "requests_rejected"):
        print(f"    {field:<22} {fmt(peak(field))}")
    print("  robustness:")
    for field in ("deadline_exceeded", "shed_requests", "retries_observed",
                  "cache_insert_failures"):
        print(f"    {field:<22} {fmt(peak(field))}")
    print("  cache:")
    for field in ("cache_hits", "cache_misses", "cache_evictions",
                  "cache_size", "cache_capacity"):
        print(f"    {field:<22} {fmt(peak(field))}")

    journals = [s.get("journal") for s in snaps
                if isinstance(s.get("journal"), dict)]
    if journals:
        print("  journal:")
        for field in ("replayed", "truncated_bytes", "appends",
                      "compactions"):
            vals = [j[field] for j in journals if is_numeric(j.get(field))]
            print(f"    {field:<22} {fmt(max(vals)) if vals else 0}")
        if any(j.get("tail_truncated") for j in journals):
            print("    tail_truncated         yes (a torn tail was recovered)")

    # Per-algorithm latency: keep the snapshot with the most computations
    # per algorithm (counters are monotonic, so that is the latest view).
    algos = {}
    for s in snaps:
        for name, a in (s.get("algos") or {}).items():
            if not isinstance(a, dict):
                continue
            if name not in algos or \
                    a.get("computed", 0) >= algos[name].get("computed", 0):
                algos[name] = a
    if algos:
        width = max(len(n) for n in algos)
        print(f"  {'algo':<{width}} {'computed':>9} {'hits':>6} "
              f"{'p50_us':>9} {'p90_us':>9} {'max_us':>9}")
        for name in sorted(algos):
            a = algos[name]
            print(f"  {name:<{width}} {fmt(a.get('computed', 0)):>9}"
                  f" {fmt(a.get('cache_hits', 0)):>6}"
                  f" {fmt(a.get('p50_us', 0)):>9}"
                  f" {fmt(a.get('p90_us', 0)):>9}"
                  f" {fmt(a.get('max_us', 0)):>9}")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="+", metavar="FILE.jsonl")
    ap.add_argument("--diff", action="store_true",
                    help="compare exactly two files row-by-row")
    ap.add_argument("--ranks", action="store_true",
                    help="per-column mean-rank table of one file")
    ap.add_argument("--scaling", action="store_true",
                    help="per-column log-log scaling exponents of one file")
    ap.add_argument("--serve-stats", action="store_true",
                    help="summarize tgs_serve stats-op snapshots")
    ap.add_argument("--value-field", default="value",
                    help="field to rank by (default: value)")
    ap.add_argument("--top", type=int, default=25,
                    help="ranking rows to print (default: 25)")
    args = ap.parse_args()

    if args.serve_stats:
        return serve_stats(args.files)

    if args.diff:
        if len(args.files) != 2:
            ap.error("--diff needs exactly two files")
        return diff(args.files[0], args.files[1])

    if args.ranks:
        if len(args.files) != 1:
            ap.error("--ranks needs exactly one file")
        return ranks(args.files[0], args.value_field, args.top)

    if args.scaling:
        if len(args.files) != 1:
            ap.error("--scaling needs exactly one file")
        field = args.value_field if args.value_field != "value" else "seconds"
        return scaling(args.files[0], field)

    had_bad = False
    for path in args.files:
        had_bad |= summarize(path)
    return 1 if had_bad else 0


if __name__ == "__main__":
    sys.exit(main())
