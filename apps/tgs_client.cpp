// tgs_client: command-line client for the tgs_serve daemon.
//
//   ./tgs_client graph.tgs --algo=MCP --procs=4
//   ./tgs_client graph.tgs --algo=MH --topology=ring4 --schedule --out=g.sched
//   ./tgs_client graph.tgs --algo=MCP,ETF,DLS --repeat=2
//   ./tgs_client --stats | --ping | --shutdown
//
// Requests go out sequentially (send, await the reply, send the next), so
// "--repeat=2" genuinely exercises the daemon's schedule cache: the second
// submission fingerprints identically and must come back "cached":true.
// Raw response JSON is printed one line per request; exit status is 0 only
// if every response had "status":"ok".
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tgs/exec/jsonl.h"
#include "tgs/serve/json.h"
#include "tgs/serve/socket.h"
#include "tgs/util/cli.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Send one line, await one line. The daemon may interleave responses to
// *pipelined* requests, but a strict request/reply client never pipelines.
std::string round_trip(tgs::UnixConn& conn, const std::string& request) {
  conn.write_line(request);
  std::string reply;
  if (!conn.read_line(&reply))
    throw std::runtime_error("server closed the connection");
  return reply;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: tgs_client [graph.tgs] [--socket=PATH] [--algo=A[,B...]]\n"
        "                  [--procs=N | --topology=SPEC] [--repeat=N]\n"
        "                  [--schedule] [--out=FILE] [--no-cache] [--quiet]\n"
        "                  [--stats] [--ping] [--shutdown]\n");
    return 0;
  }

  try {
    const std::string socket_path = cli.get("socket", "/tmp/tgs_serve.sock");
    UnixConn conn = UnixConn::connect(socket_path);

    // Admin ops: fire the one op and report.
    for (const char* op : {"stats", "ping", "shutdown"}) {
      if (!cli.has(op)) continue;
      JsonObject o;
      o.add("op", op);
      const std::string reply = round_trip(conn, o.str());
      std::printf("%s\n", reply.c_str());
      return json_parse(reply).get_string("status", "") == "ok" ? 0 : 1;
    }

    if (cli.positional().empty()) {
      std::fprintf(stderr, "tgs_client: no graph file (see --help)\n");
      return 1;
    }
    const std::string graph_text = read_file(cli.positional()[0]);
    const std::vector<std::string> algos = cli.get_list("algo");
    if (algos.empty()) {
      std::fprintf(stderr, "tgs_client: no --algo given\n");
      return 1;
    }
    const long repeat = cli.get_int("repeat", 1);
    const bool want_schedule = cli.has("schedule") || cli.has("out");

    bool all_ok = true;
    int seq = 0;
    for (long r = 0; r < repeat; ++r) {
      for (const std::string& algo : algos) {
        JsonObject o;
        o.add("id", "c" + std::to_string(seq++))
            .add("algo", algo)
            .add("graph", graph_text);
        if (cli.has("topology")) {
          o.add("topology", cli.get("topology", ""));
        } else if (cli.has("procs")) {
          o.add_int("procs", cli.get_int("procs", 0));
        }
        if (want_schedule) o.add("schedule", true);
        if (cli.has("no-cache")) o.add("cache", false);

        const std::string reply = round_trip(conn, o.str());
        if (!cli.has("quiet")) std::printf("%s\n", reply.c_str());

        const JsonValue doc = json_parse(reply);
        if (doc.get_string("status", "") != "ok") {
          all_ok = false;
          continue;
        }
        const std::string out = cli.get("out", "");
        if (!out.empty()) {
          std::ofstream f(out, std::ios::binary | std::ios::trunc);
          f << doc.get_string("schedule", "");
          if (!f) throw std::runtime_error("cannot write " + out);
        }
      }
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tgs_client: %s\n", e.what());
    return 1;
  }
}
