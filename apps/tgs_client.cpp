// tgs_client: command-line client for the tgs_serve daemon.
//
//   ./tgs_client graph.tgs --algo=MCP --procs=4
//   ./tgs_client graph.tgs --algo=MH --topology=ring4 --schedule --out=g.sched
//   ./tgs_client graph.tgs --algo=MCP,ETF,DLS --repeat=2
//   ./tgs_client --stats | --ping | --shutdown
//
// Requests go out sequentially (send, await the reply, send the next), so
// "--repeat=2" genuinely exercises the daemon's schedule cache: the second
// submission fingerprints identically and must come back "cached":true.
// Raw response JSON is printed one line per request; exit status is 0 only
// if every response had "status":"ok".
//
// Transient failures -- a daemon still restarting, "overloaded" or shed
// replies, connection drops, I/O timeouts -- are retried up to --retries
// times with exponential backoff and decorrelated jitter. A retry resends
// the SAME request id with a bumped "retry" attempt counter: scheduling is
// deterministic and cached, so retried requests are idempotent by
// construction. Definitive errors (bad_graph, unknown_algo, ...) are never
// retried.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tgs/exec/jsonl.h"
#include "tgs/serve/json.h"
#include "tgs/serve/socket.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Send one line, await one line. The daemon may interleave responses to
// *pipelined* requests, but a strict request/reply client never pipelines.
std::string round_trip(tgs::UnixConn& conn, const std::string& request) {
  conn.write_line(request);
  std::string reply;
  if (!conn.read_line(&reply))
    throw std::runtime_error("server closed the connection");
  return reply;
}

struct RetryPolicy {
  long retries = 3;     // attempts beyond the first
  long base_ms = 25;    // backoff floor
  long cap_ms = 2000;   // backoff ceiling
  int timeout_ms = 0;   // per-socket-op timeout (0 = block)
};

/// Only these reply codes mean "the same request may succeed later".
bool retryable_code(const std::string& code) {
  return code == "overloaded";
}

/// Run one request with the retry loop. `build(attempt)` renders the
/// request line for that attempt (same id, "retry" field = attempt).
/// `conn` is reconnected on demand -- a dropped daemon connection is just
/// another transient. Throws only after the final attempt fails hard.
std::string request_with_retry(
    const std::string& socket_path, tgs::UnixConn* conn,
    const RetryPolicy& policy, tgs::Rng* rng,
    const std::function<std::string(int)>& build) {
  // Decorrelated jitter: each sleep is uniform in [base, 3 * previous],
  // clamped to the cap. Independent clients desynchronize instead of
  // hammering a recovering daemon in lockstep.
  long sleep_ms = policy.base_ms;
  for (int attempt = 0;; ++attempt) {
    try {
      if (!conn->valid()) {
        *conn = tgs::UnixConn::connect(socket_path);
        if (policy.timeout_ms > 0)
          conn->set_timeouts(policy.timeout_ms, policy.timeout_ms);
      }
      const std::string reply = round_trip(*conn, build(attempt));
      const std::string code = tgs::json_parse(reply).get_string("code", "");
      if (!retryable_code(code) || attempt >= policy.retries) return reply;
    } catch (const std::exception&) {
      // Half-read replies poison the line framing: always reconnect.
      conn->close();
      if (attempt >= policy.retries) throw;
    }
    sleep_ms = std::min(
        policy.cap_ms,
        rng->uniform_int(policy.base_ms, std::max(policy.base_ms,
                                                  sleep_ms * 3)));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: tgs_client [graph.tgs] [--socket=PATH] [--algo=A[,B...]]\n"
        "                  [--procs=N | --topology=SPEC] [--repeat=N]\n"
        "                  [--schedule] [--out=FILE] [--no-cache] [--quiet]\n"
        "                  [--deadline-ms=N] [--priority=high|low]\n"
        "                  [--retries=3] [--retry-base-ms=25]\n"
        "                  [--retry-cap-ms=2000] [--timeout-ms=N] [--seed=N]\n"
        "                  [--stats] [--ping] [--shutdown]\n");
    return 0;
  }

  try {
    const std::string socket_path = cli.get("socket", "/tmp/tgs_serve.sock");
    RetryPolicy policy;
    policy.retries = cli.get_int_in("retries", policy.retries, 0, 1000);
    policy.base_ms =
        cli.get_int_in("retry-base-ms", policy.base_ms, 1, 3600000);
    policy.cap_ms = cli.get_int_in("retry-cap-ms", policy.cap_ms, 1, 3600000);
    policy.timeout_ms = static_cast<int>(
        cli.get_int_in("timeout-ms", 0, 0, 1000000000));
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

    // Lazily connected (inside the retry loop), so a daemon mid-restart is
    // a transient, not an immediate failure.
    UnixConn conn;

    // Admin ops: fire the one op and report. shutdown is intentionally
    // never retried -- re-sending it to a freshly restarted daemon would
    // kill the wrong incarnation.
    for (const char* op : {"stats", "ping", "shutdown"}) {
      if (!cli.has(op)) continue;
      const RetryPolicy admin_policy =
          std::string(op) == "shutdown" ? RetryPolicy{0, 1, 1,
                                                      policy.timeout_ms}
                                        : policy;
      const std::string reply = request_with_retry(
          socket_path, &conn, admin_policy, &rng, [op](int) {
            JsonObject o;
            o.add("op", op);
            return o.str();
          });
      std::printf("%s\n", reply.c_str());
      return json_parse(reply).get_string("status", "") == "ok" ? 0 : 1;
    }

    if (cli.positional().empty()) {
      std::fprintf(stderr, "tgs_client: no graph file (see --help)\n");
      return 1;
    }
    const std::string graph_text = read_file(cli.positional()[0]);
    const std::vector<std::string> algos = cli.get_list("algo");
    if (algos.empty()) {
      std::fprintf(stderr, "tgs_client: no --algo given\n");
      return 1;
    }
    const long repeat = cli.get_int("repeat", 1);
    const bool want_schedule = cli.has("schedule") || cli.has("out");

    bool all_ok = true;
    int seq = 0;
    for (long r = 0; r < repeat; ++r) {
      for (const std::string& algo : algos) {
        const std::string id = "c" + std::to_string(seq++);
        const auto build = [&](int attempt) {
          JsonObject o;
          o.add("id", id).add("algo", algo).add("graph", graph_text);
          if (cli.has("topology")) {
            o.add("topology", cli.get("topology", ""));
          } else if (cli.has("procs")) {
            o.add_int("procs", cli.get_int("procs", 0));
          }
          if (want_schedule) o.add("schedule", true);
          if (cli.has("no-cache")) o.add("cache", false);
          if (cli.has("deadline-ms"))
            o.add_int("deadline_ms", cli.get_int("deadline-ms", 0));
          if (cli.has("priority")) o.add("priority", cli.get("priority", ""));
          if (attempt > 0) o.add_int("retry", attempt);
          return o.str();
        };
        const std::string reply =
            request_with_retry(socket_path, &conn, policy, &rng, build);
        if (!cli.has("quiet")) std::printf("%s\n", reply.c_str());

        const JsonValue doc = json_parse(reply);
        if (doc.get_string("status", "") != "ok") {
          all_ok = false;
          continue;
        }
        const std::string out = cli.get("out", "");
        if (!out.empty()) {
          std::ofstream f(out, std::ios::binary | std::ios::trunc);
          f << doc.get_string("schedule", "");
          if (!f) throw std::runtime_error("cannot write " + out);
        }
      }
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tgs_client: %s\n", e.what());
    return 1;
  }
}
