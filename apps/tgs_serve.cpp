// tgs_serve: the scheduling-as-a-service daemon.
//
//   ./tgs_serve --socket=/tmp/tgs.sock --workers=4
//       [--queue-cap=256] [--cache-cap=1024]
//       [--journal=PATH] [--fsync-every=1] [--compact-every=4096]
//       [--default-deadline-ms=0] [--max-deadline-ms=0] [--io-timeout-ms=0]
//       [--faults=SPEC]
//
// Serves the line-delimited JSON protocol of docs/serve.md on a unix
// socket until SIGINT/SIGTERM or a client "shutdown" op. Exit code 0 on a
// clean stop.
//
// --journal makes the schedule cache crash-safe: entries are appended to a
// checksummed journal before the response is sent, and replayed on
// restart (torn tails from a crash are truncated, never fatal).
//
// --faults (or the TGS_FAULTS env var; the flag wins) arms deterministic
// fault injection for chaos testing, e.g. --faults="read_eintr*10" or
// "journal_torn@3". See src/tgs/serve/faults.h for the grammar.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "tgs/serve/faults.h"
#include "tgs/serve/server.h"
#include "tgs/util/cli.h"

int main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: tgs_serve [--socket=PATH] [--workers=N] [--queue-cap=N]\n"
        "                 [--cache-cap=N] [--journal=PATH] [--fsync-every=N]\n"
        "                 [--compact-every=N] [--default-deadline-ms=N]\n"
        "                 [--max-deadline-ms=N] [--io-timeout-ms=N]\n"
        "                 [--faults=SPEC] [--quiet]\n");
    return 0;
  }

  ServeOptions opt;
  try {
    opt.socket_path = cli.get("socket", opt.socket_path);
    opt.workers = static_cast<int>(cli.get_int("workers", 0));
    opt.queue_capacity = static_cast<std::size_t>(
        cli.get_int("queue-cap", static_cast<std::int64_t>(opt.queue_capacity)));
    opt.cache_capacity = static_cast<std::size_t>(
        cli.get_int("cache-cap", static_cast<std::int64_t>(opt.cache_capacity)));
    opt.journal_path = cli.get("journal", "");
    opt.journal_fsync_every = static_cast<int>(
        cli.get_int_in("fsync-every", opt.journal_fsync_every, 0, 1 << 20));
    opt.journal_compact_every = static_cast<int>(
        cli.get_int_in("compact-every", opt.journal_compact_every, 0,
                       1 << 30));
    opt.default_deadline_ms = static_cast<int>(
        cli.get_int_in("default-deadline-ms", 0, 0, 1000000000));
    opt.max_deadline_ms = static_cast<int>(
        cli.get_int_in("max-deadline-ms", 0, 0, 1000000000));
    opt.io_timeout_ms = static_cast<int>(
        cli.get_int_in("io-timeout-ms", 0, 0, 1000000000));

    const char* env_faults = std::getenv("TGS_FAULTS");
    const std::string faults =
        cli.get("faults", env_faults != nullptr ? env_faults : "");
    if (!faults.empty()) FaultPlan::global().arm_spec(faults);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tgs_serve: %s\n", e.what());
    return 1;
  }

  // Block the termination signals before any thread exists, so every
  // thread inherits the mask and only the waiter below receives them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    Server server(opt);
    if (!cli.has("quiet"))
      std::fprintf(stderr, "tgs_serve: listening on %s (%d workers)\n",
                   server.socket_path().c_str(), server.num_workers());

    std::thread signal_waiter([&sigs, &server] {
      int sig = 0;
      sigwait(&sigs, &sig);
      server.request_stop();
    });

    server.serve_forever();

    // If the stop came from a client "shutdown" op, the waiter is still
    // blocked in sigwait: deliver it a signal so it can exit and be joined.
    pthread_kill(signal_waiter.native_handle(), SIGTERM);
    signal_waiter.join();
    if (!cli.has("quiet")) std::fprintf(stderr, "tgs_serve: stopped\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tgs_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
